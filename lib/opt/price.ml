(* Dry-run pricing of a fully-specified problem: charge exactly what a cold
   execution would charge for dependent partitioning and communication, and
   an estimate (from {!Stats}) of what the leaves would cost — without
   running a single leaf.

   The partitioning bill is not modeled, it is *computed*: pricing runs the
   same [Placement.of_tdn] / [Lower.lower] / [Part_eval.eval_partitions]
   pipeline a cold [Spdistal.run] runs, tallies the same [Part_eval.stats]
   and charges [Cache.partition_seconds] on them, so [Cost.partitioning] of
   a priced candidate is bit-equal to the cold run's — the invariant the
   optimizer rests on (and a regression test enforces).  Communication is
   likewise exact: the per-piece fetch/broadcast/reduce math below mirrors
   [Interp.run]'s simulate loop over the materialized partitions.  Only leaf
   time is an estimate (the true value needs the executed inner extents);
   it uses the shared [Leaf.mul_work]/merge byte model over statistical
   shard shapes, so candidates are ranked on the same scale the clock uses.

   Faults and memory pressure (UVM paging) are deliberately ignored:
   candidates are priced for the fault-free steady state, which is also
   what the tournament compares. *)

open Spdistal_runtime
open Spdistal_formats
open Spdistal_ir
open Spdistal_exec
module Spdistal = Core.Spdistal

type priced = {
  pr_total : float;
  pr_cost : Cost.t;
  pr_part_seconds : float;
  pr_part_ops : int;
  pr_launches : int;
}

let total p = p.pr_total

(* Piece -> partition color; same layout rule as [Interp.color_for] (pieces
   are row-major over the grid; a [Grid_dim d] partition's color is the
   piece's coordinate along d). *)
let color_for ~grid ~pieces part piece =
  let colors = Partition.colors part in
  match Partition.axis part with
  | Partition.Flat ->
      if colors = pieces then piece
      else
        Error.fail ~piece Error.Launch
          "flat partition with %d colors on %d pieces" colors pieces
  | Partition.Grid_dim d ->
      let nd = Array.length grid in
      if d < 0 || d >= nd then
        Error.fail ~piece Error.Launch "partition axis %d on a %d-d grid" d nd;
      if colors <> grid.(d) then
        Error.fail ~piece Error.Launch
          "axis-%d partition with %d colors but grid dim has %d" d colors
          grid.(d);
      let stride = ref 1 in
      for k = d + 1 to nd - 1 do
        stride := !stride * grid.(k)
      done;
      piece / !stride mod grid.(d)

(* Estimated work of one piece of a multiplicative leaf: the shared
   [Leaf.mul_work] model over the piece's exact shard cardinality and a
   statistical rows-touched estimate. *)
let mul_estimate ~bindings ~tstats ~grid ~data ~part ~subset_for ~shard_parts
    ~(leaf : Loop_ir.leaf) ~driver_name c =
  let plan = Leaf.plan_mul ~bindings ~leaf ~driver_name in
  let shard =
    match List.assoc_opt driver_name shard_parts with
    | Some pname -> subset_for (part pname) c
    | None ->
        Error.fail ~piece:c Error.Leaf "no shard for driver %s" driver_name
  in
  let nnz_shard = Iset.cardinal shard in
  let col_range =
    if leaf.Loop_ir.col_split > 1 then begin
      let py = grid.(1) in
      let cy = c mod py in
      let od = data leaf.Loop_ir.leaf_stmt.Tin.lhs.Tin.tensor in
      let e = Operand.dim od (Operand.order od - 1) in
      Some ((cy * e / py, ((cy + 1) * e / py) - 1))
    end
    else None
  in
  let jlo, jhi = Leaf.j_bounds plan ~col_range in
  let klo, khi = Leaf.k_bounds plan in
  let st = Stats.find tstats driver_name in
  let rows = Stats.rows_estimate st ~nnz_shard in
  Leaf.mul_work plan ~nnz:nnz_shard ~rows_touched:rows ~js:(jhi - jlo + 1)
    ~ks:(khi - klo + 1)

(* Estimated work of one piece of an additive merge: exact per-operand entry
   counts over the piece's row block (from the pos arrays), the shared merge
   byte model, and a collision estimate for the emitted output pattern. *)
let merge_estimate ~bindings ~part ~subset_for ~(leaf : Loop_ir.leaf) ~tensors
    c =
  let rows =
    match leaf.Loop_ir.leaf_row_part with
    | Some pname -> subset_for (part pname) c
    | None -> Error.fail ~piece:c Error.Leaf "merge leaf without a row part"
  in
  let rows_n = Iset.cardinal rows in
  let cols =
    (Operand.find_sparse bindings (List.hd tensors)).Tensor.dims.(1)
  in
  let entries =
    List.fold_left
      (fun acc tname ->
        let t = Operand.find_sparse bindings tname in
        let pos = (Tensor.pos_of t 1).Region.data in
        let s = ref 0 in
        Iset.iter
          (fun r ->
            let lo, hi = pos.(r) in
            s := !s + max 0 (hi - lo + 1))
          rows;
        acc + !s)
      0 tensors
  in
  let n = float_of_int entries in
  let flops = n in
  let br = if leaf.Loop_ir.use_workspace then 32. *. n else 2. *. 16. *. n in
  (* Expected emitted non-zeros: per-row Bernoulli collision model over the
     shared column extent. *)
  let out_nnz =
    if rows_n = 0 || entries = 0 then 0.
    else begin
      let k = n /. float_of_int rows_n in
      let c = float_of_int (max cols 1) in
      float_of_int rows_n *. c *. (1. -. ((1. -. (1. /. c)) ** k))
    end
  in
  let out_nnz = min out_nnz n in
  {
    Task.flops;
    bytes_read = br;
    bytes_written = 16. *. out_nnz;
    atomics = false;
  }

let price (p : Spdistal.problem) : (priced, string) result =
  try
    let machine = p.Spdistal.machine in
    let b = Spdistal.bindings p in
    let pstats = Part_eval.stats () in
    (* Cold-path replica: placement lowering (tallying its partitioning
       work), compile, partition materialization — leaves stay cold
       ([Interp] backend prepares no closures and executes nothing). *)
    let placement =
      List.map
        (fun (name, _, tdn) ->
          (name, Placement.of_tdn ~stats:pstats ~machine ~bindings:b name tdn))
        p.Spdistal.operands
    in
    let prog = Spdistal.compile ~trace:Spdistal_obs.Trace.null p in
    let prepared =
      Interp.prepare ~trace:Spdistal_obs.Trace.null
        ~backend:Compile_leaf.Interp ~bindings:b prog
    in
    Part_eval.accum_stats pstats prepared.Interp.pp_penv;
    let part_seconds = Cache.partition_seconds machine pstats in
    let part_ops = pstats.Part_eval.s_parts + pstats.Part_eval.s_dep_ops in
    let cost = Cost.create () in
    Cost.add_partitioning cost ~ops:part_ops part_seconds;
    let grid = prog.Loop_ir.grid in
    let pieces = Loop_ir.pieces prog in
    if pieces <> Machine.pieces machine then
      Error.fail Error.Config "program lowered for a different machine size";
    let penv = prepared.Interp.pp_penv in
    let part name = Part_eval.find_partition penv name in
    let subset_for pt piece =
      Partition.subset pt (color_for ~grid ~pieces pt piece)
    in
    let data name = (Operand.find b name).Operand.data in
    let intra = Machine.nodes machine = 1 in
    let tstats = Stats.of_bindings b in
    let launches = ref 0 in
    List.iter
      (function
        | Loop_ir.Distributed_for { shard_parts; comms; out_comm; leaf; _ }
          ->
            incr launches;
            let comm_times = Array.make pieces 0. in
            let leaf_times = Array.make pieces 0. in
            let total_bytes = ref 0. and total_msgs = ref 0 in
            for c = 0 to pieces - 1 do
              (* --- communication: the interpreter's simulate loop --- *)
              let comm_time = ref 0. in
              List.iter
                (fun (cm : Loop_ir.comm) ->
                  let d = data cm.Loop_ir.comm_tensor in
                  let elt =
                    Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                    /. float_of_int cm.Loop_ir.divide_by
                  in
                  let full_count =
                    match (d, cm.Loop_ir.comm_dim) with
                    | Operand.Sparse t, -1 -> Tensor.nnz t
                    | _, dim -> Operand.dim d (max dim 0)
                  in
                  match cm.Loop_ir.comm_part with
                  | None -> (
                      let bytes = float_of_int full_count *. elt in
                      match
                        Placement.resident_set placement
                          ~tensor:cm.Loop_ir.comm_tensor
                          ~comm_dim:cm.Loop_ir.comm_dim
                          ~piece_subset:(fun p -> subset_for p c)
                      with
                      | `All -> ()
                      | `Set _ | `Nothing ->
                          comm_time :=
                            !comm_time +. Machine.bcast_time machine ~bytes;
                          total_bytes := !total_bytes +. bytes;
                          incr total_msgs)
                  | Some pname ->
                      let needed = subset_for (part pname) c in
                      let missing =
                        match
                          Placement.resident_set placement
                            ~tensor:cm.Loop_ir.comm_tensor
                            ~comm_dim:cm.Loop_ir.comm_dim
                            ~piece_subset:(fun p -> subset_for p c)
                        with
                        | `All -> Iset.empty
                        | `Nothing -> needed
                        | `Set r -> Iset.diff needed r
                      in
                      let bytes =
                        float_of_int (Iset.cardinal missing) *. elt
                      in
                      if bytes > 0. then begin
                        comm_time :=
                          !comm_time
                          +. Machine.p2p_time machine ~intra_node:intra ~bytes;
                        total_bytes := !total_bytes +. bytes;
                        incr total_msgs
                      end)
                comms;
              comm_times.(c) <- !comm_time;
              (* --- leaf estimate --- *)
              let work =
                match leaf.Loop_ir.driver with
                | Loop_ir.Sparse_driver driver_name ->
                    mul_estimate ~bindings:b ~tstats ~grid ~data ~part
                      ~subset_for ~shard_parts ~leaf ~driver_name c
                | Loop_ir.Merge_driver tensors ->
                    merge_estimate ~bindings:b ~part ~subset_for ~leaf
                      ~tensors c
              in
              Cost.add_flops cost work.Task.flops;
              let lt = Task.leaf_time machine work in
              let lt =
                if machine.Machine.kind = Machine.Cpu then
                  if not leaf.Loop_ir.parallel then
                    lt *. float_of_int machine.Machine.params.cpu_cores
                  else lt /. machine.Machine.params.legion_leaf_efficiency
                else lt
              in
              leaf_times.(c) <- lt
            done;
            Cost.add_comm cost ~bytes:!total_bytes ~messages:!total_msgs 0.;
            Cost.record_launch_split cost ~machine ~comm_times ~leaf_times;
            (* --- output reduction for aliased ownership --- *)
            (match out_comm with
            | None -> ()
            | Some cm ->
                let total, union =
                  match cm.Loop_ir.comm_part with
                  | Some pname ->
                      let pt = part pname in
                      ( Array.fold_left
                          (fun acc s -> acc + Iset.cardinal s)
                          0 pt.Partition.subsets,
                        Iset.cardinal (Partition.union_of_colors pt) )
                  | None ->
                      let n =
                        Operand.dim
                          (data cm.Loop_ir.comm_tensor)
                          (max cm.Loop_ir.comm_dim 0)
                      in
                      (pieces * n, n)
                in
                let overlap = max 0 (total - union) in
                if overlap > 0 then begin
                  let d = data cm.Loop_ir.comm_tensor in
                  let elt =
                    Operand.slice_bytes d (max cm.Loop_ir.comm_dim 0)
                    /. float_of_int cm.Loop_ir.divide_by
                  in
                  let bytes =
                    float_of_int overlap *. elt /. float_of_int pieces
                  in
                  Cost.add_comm cost
                    ~bytes:(float_of_int overlap *. elt)
                    ~messages:pieces
                    (Machine.reduce_time machine ~bytes)
                end)
        | _ -> ())
      prepared.Interp.pp_loops;
    Ok
      {
        pr_total = Cost.total cost;
        pr_cost = cost;
        pr_part_seconds = part_seconds;
        pr_part_ops = part_ops;
        pr_launches = !launches;
      }
  with
  | Error.Error e -> Error (Error.to_string e)
  | Invalid_argument m -> Error ("invalid candidate: " ^ m)
  | Failure m -> Error ("candidate failed: " ^ m)
