(** Dry-run pricing: evaluate a fully-specified problem with the existing
    cost model without executing any leaf.

    The partitioning bill is exact by construction — pricing runs the same
    placement-lowering / compile / partition-materialization pipeline a cold
    [Spdistal.run] runs and charges the same [Cache.partition_seconds] on
    the same [Part_eval.stats], so [(priced).pr_cost.Cost.partitioning] is
    bit-equal to the partitioning cost of a cold run of the same schedule.
    Communication is exact over the materialized partitions (the per-piece
    fetch/broadcast/reduce math mirrors the interpreter); leaf time is a
    statistical estimate on the shared work model.  Faults and memory
    pressure are ignored (fault-free steady-state pricing). *)

open Spdistal_runtime

type priced = {
  pr_total : float;  (** simulated seconds of one cold application *)
  pr_cost : Cost.t;
  pr_part_seconds : float;  (** dependent-partitioning component *)
  pr_part_ops : int;
  pr_launches : int;  (** distributed launches in the lowered program *)
}

val total : priced -> float

(** Price one candidate.  [Error reason] when the candidate does not lower,
    place or classify (an infeasible point of the search space), never an
    exception. *)
val price : Core.Spdistal.problem -> (priced, string) result
