(** Per-index sparsity statistics derived from actual tensor level
    structures — the inputs of the auto-scheduler's cost ranking (Galley's
    insight applied to SpDISTAL's schedule/TDN space). *)

open Spdistal_exec

type t = {
  ts_name : string;
  ts_sparse : bool;
  ts_dims : int array;  (** logical dimension extents *)
  ts_nnz : int;  (** stored values (every element for dense operands) *)
  ts_distinct : int array;  (** distinct stored coordinates per dimension *)
  ts_fill : float array;  (** distinct / extent per dimension *)
  ts_bytes : float;  (** payload footprint in bytes *)
}

val of_operand : string -> Operand.data -> t
val of_bindings : Operand.bindings -> t list

(** Raises [Invalid_argument] on an unknown name. *)
val find : t list -> string -> t

(** Stored values / logical cells. *)
val density : t -> float

(** Average stored values per distinct leading coordinate. *)
val avg_slice_nnz : t -> float

(** Expected distinct leading coordinates touched by a contiguous shard of
    [nnz_shard] stored values (proportionality model, clamped to
    [[1, min distinct nnz_shard]]; 0 for an empty shard). *)
val rows_estimate : t -> nnz_shard:int -> int

val pp : Format.formatter -> t -> unit
