(* Candidate enumeration: the schedule/TDN points the auto-scheduler prices.

   Four families, mirroring the shapes the paper's hand schedules use:

   - universe: divide one output variable across the machine, block every
     operand that carries it, replicate the rest (fig10's row-split CPU
     schedules);
   - nnz: fuse a prefix of the sparse driver's variables, switch to its
     position space and divide that (fig11's GPU non-zero splits), with the
     driver fused-non-zero distributed and other operands matched;
   - batched: 2-D machine grids divide an output row variable and a dense
     column variable (the memory-conserving SpMM of fig11);
   - workspace: for pure additions, each universe candidate again with a
     precompute workspace (SpAdd3's two assembly strategies).

   Every family reproduces the corresponding hand schedule exactly when
   applied to the catalog kernels, so the search space always contains the
   hand point; infeasible combinations are generated anyway and filtered by
   [Price] returning [Error]. *)

open Spdistal_runtime
open Spdistal_ir
open Spdistal_exec
module Spdistal = Core.Spdistal

type candidate = {
  c_label : string;
  c_schedule : Schedule.t;
  c_tdns : (string * Tdn.t) list;
}

let operand_names p =
  List.map (fun (n, _, _) -> n) p.Spdistal.operands

(* The access of [name] in the statement (lhs first, then rhs).  Operands
   accessed more than once keep their first access — the TDN choice only
   needs one coordinate view of the tensor. *)
let access_of (stmt : Tin.stmt) name =
  if stmt.Tin.lhs.Tin.tensor = name then Some stmt.Tin.lhs
  else
    List.find_opt
      (fun (a : Tin.access) -> a.Tin.tensor = name)
      (Tin.rhs_accesses stmt)

let var_pos (a : Tin.access) v =
  let rec go i = function
    | [] -> None
    | x :: _ when x = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 a.Tin.indices

let proc_of machine =
  if machine.Machine.kind = Machine.Gpu then Schedule.Gpu_thread
  else Schedule.Cpu_thread

let is_sparse p name =
  match (Operand.find (Spdistal.bindings p) name).Operand.data with
  | Operand.Sparse _ -> true
  | _ -> false

let operand_order p name =
  Operand.order (Operand.find (Spdistal.bindings p) name).Operand.data

(* ------------------------------------------------------------------ *)
(* Families                                                            *)
(* ------------------------------------------------------------------ *)

let universe p v =
  let proc = proc_of p.Spdistal.machine in
  let vo = v ^ "o" and vi = v ^ "i" in
  let schedule =
    [
      Schedule.Divide { v; outer = vo; inner = vi };
      Schedule.Distribute [ vo ];
      Schedule.Communicate { tensors = operand_names p; at = vo };
      Schedule.Parallelize { v = vi; proc };
    ]
  in
  let tdns =
    List.map
      (fun (n, _, _) ->
        match Option.bind (access_of p.Spdistal.stmt n) (fun a -> var_pos a v) with
        | Some k -> (n, Tdn.Blocked { tensor_dim = k; machine_dim = 0 })
        | None -> (n, Tdn.Replicated))
      p.Spdistal.operands
  in
  { c_label = "row:" ^ v; c_schedule = schedule; c_tdns = tdns }

(* Fuse the first [f] variables of the driver's access, move to position
   space and divide — the shape of [Kernels.nnz_sched]. *)
let nnz_candidate p ~driver ~vars f =
  let proc = proc_of p.Spdistal.machine in
  let fuse_vars = List.filteri (fun i _ -> i < f) vars in
  let fuses, fused =
    match fuse_vars with
    | [] | [ _ ] -> invalid_arg "Search.nnz_candidate"
    | v0 :: rest ->
        List.fold_left
          (fun (cmds, prev) v ->
            let fv = prev ^ v in
            (cmds @ [ Schedule.Fuse { f = fv; a = prev; b = v } ], fv))
          ([], v0) rest
  in
  let schedule =
    fuses
    @ [
        Schedule.Pos { v = fused; pv = "fp"; tensor = driver };
        Schedule.Divide { v = "fp"; outer = "fpo"; inner = "fpi" };
        Schedule.Distribute [ "fpo" ];
        Schedule.Communicate { tensors = operand_names p; at = "fpo" };
        Schedule.Parallelize { v = "fpi"; proc };
      ]
  in
  let out = p.Spdistal.stmt.Tin.lhs.Tin.tensor in
  let tdns =
    List.map
      (fun (n, _, _) ->
        if n = driver then
          (n, Tdn.Fused_non_zero { dims = List.init f Fun.id; machine_dim = 0 })
        else if is_sparse p n then begin
          let d = operand_order p n in
          if d >= 2 then
            (n, Tdn.Fused_non_zero { dims = List.init d Fun.id; machine_dim = 0 })
          else (n, Tdn.Non_zero { tensor_dim = 0; machine_dim = 0 })
        end
        else if n = out then (n, Tdn.Blocked { tensor_dim = 0; machine_dim = 0 })
        else (n, Tdn.Replicated))
      p.Spdistal.operands
  in
  {
    c_label = Printf.sprintf "nnz:%s/%d" driver f;
    c_schedule = schedule;
    c_tdns = tdns;
  }

(* 2-D grids: divide the dense output's row variable over the first machine
   dimension and its column variable over the second ([Kernels.spmm_batched]
   generalized). *)
let batched p ~r ~e =
  let proc = proc_of p.Spdistal.machine in
  let schedule =
    [
      Schedule.Divide { v = r; outer = r ^ "o"; inner = r ^ "i" };
      Schedule.Divide { v = e; outer = e ^ "o"; inner = e ^ "i" };
      Schedule.Distribute [ r ^ "o"; e ^ "o" ];
      Schedule.Communicate { tensors = operand_names p; at = e ^ "o" };
      Schedule.Parallelize { v = r ^ "i"; proc };
    ]
  in
  let tdns =
    List.map
      (fun (n, _, _) ->
        match access_of p.Spdistal.stmt n with
        | None -> (n, Tdn.Replicated)
        | Some a -> (
            match var_pos a r with
            | Some k -> (n, Tdn.Blocked { tensor_dim = k; machine_dim = 0 })
            | None -> (
                match var_pos a e with
                | Some k -> (n, Tdn.Tiled { mappings = [ (k, 1) ] })
                | None -> (n, Tdn.Replicated))))
      p.Spdistal.operands
  in
  { c_label = Printf.sprintf "batch:%s,%s" r e; c_schedule = schedule; c_tdns = tdns }

let with_workspace c ~out ~v =
  {
    c with
    c_label = c.c_label ^ ":ws";
    c_schedule = c.c_schedule @ [ Schedule.Precompute { v; tensors = [ out ] } ];
  }

(* ------------------------------------------------------------------ *)
(* Enumeration                                                         *)
(* ------------------------------------------------------------------ *)

(* The sparse driver of a multiplicative statement: the unique sparse rhs
   operand (the leaf iterates its stored values).  [None] for additions or
   when no / several sparse rhs operands exist. *)
let driver_of p =
  let stmt = p.Spdistal.stmt in
  if Tin.is_pure_addition stmt then None
  else
    match
      List.sort_uniq compare
        (List.filter_map
           (fun (a : Tin.access) ->
             if is_sparse p a.Tin.tensor then Some a.Tin.tensor else None)
           (Tin.rhs_accesses stmt))
    with
    | [ d ] -> Some d
    | _ -> None

let candidates p =
  let stmt = p.Spdistal.stmt in
  let grid = p.Spdistal.machine.Machine.grid in
  let out = stmt.Tin.lhs.Tin.tensor in
  if Array.length grid >= 2 then
    (* 2-D machines: the batched family over (row, column) pairs of the
       output's variables. *)
    match stmt.Tin.lhs.Tin.indices with
    | r :: rest -> List.map (fun e -> batched p ~r ~e) rest
    | [] -> []
  else begin
    let universe_cands = List.map (universe p) stmt.Tin.lhs.Tin.indices in
    let ws_cands =
      if Tin.is_pure_addition stmt then
        List.concat_map
          (fun c ->
            match stmt.Tin.lhs.Tin.indices with
            | _ :: v :: _ -> [ with_workspace c ~out ~v ]
            | _ -> [])
          universe_cands
      else []
    in
    let nnz_cands =
      match driver_of p with
      | None -> []
      | Some d -> (
          match access_of stmt d with
          | None -> []
          | Some a ->
              let vars = a.Tin.indices in
              let order = List.length vars in
              if order < 2 then []
              else
                List.map
                  (fun f -> nnz_candidate p ~driver:d ~vars f)
                  (List.init (order - 1) (fun i -> i + 2)))
    in
    universe_cands @ nnz_cands @ ws_cands
  end

(* The strawman every auto choice must beat: distribute the first output
   variable without leaf parallelism, and mis-block every operand on its
   last dimension.  Feasible for the catalog kernels, and bad everywhere —
   CPU leaves forfeit the cores, GPU pieces fetch what a matched
   distribution would have resident.  Order-3+ sparse operands are blocked
   on dimension 0 instead: a last-dimension block of a compressed tensor is
   a scattered position set whose interval list makes the partition
   materialization (hence pricing the strawman) take minutes of host time,
   and withholding leaf parallelism already prices those cells clearly
   worse. *)
let naive p =
  let stmt = p.Spdistal.stmt in
  let grid = p.Spdistal.machine.Machine.grid in
  let tdns =
    List.map
      (fun (n, _, _) ->
        let order = operand_order p n in
        let d = if is_sparse p n && order >= 3 then 0 else order - 1 in
        (n, Tdn.Blocked { tensor_dim = d; machine_dim = 0 }))
      p.Spdistal.operands
  in
  let schedule =
    match (Array.length grid >= 2, stmt.Tin.lhs.Tin.indices) with
    | true, r :: e :: _ ->
        [
          Schedule.Divide { v = r; outer = r ^ "o"; inner = r ^ "i" };
          Schedule.Divide { v = e; outer = e ^ "o"; inner = e ^ "i" };
          Schedule.Distribute [ r ^ "o"; e ^ "o" ];
          Schedule.Communicate { tensors = operand_names p; at = e ^ "o" };
        ]
    | _, v :: _ ->
        [
          Schedule.Divide { v; outer = v ^ "o"; inner = v ^ "i" };
          Schedule.Distribute [ v ^ "o" ];
          Schedule.Communicate { tensors = operand_names p; at = v ^ "o" };
        ]
    | _, [] -> invalid_arg "Search.naive: statement without output variables"
  in
  { c_label = "naive"; c_schedule = schedule; c_tdns = tdns }

let apply p (c : candidate) =
  Spdistal.with_schedule p ~schedule:c.c_schedule ~tdns:c.c_tdns
