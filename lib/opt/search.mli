(** Candidate enumeration for the auto-scheduler: schedule/TDN points drawn
    from the four families the paper's hand schedules use (universe
    row-splits, fused non-zero splits, 2-D batched tilings, workspace
    variants of pure additions).  The family rules reproduce every hand
    schedule of the kernel catalog exactly, so the hand point is always in
    the search space; infeasible combinations are filtered downstream by
    {!Price.price} returning [Error]. *)

open Spdistal_ir

type candidate = {
  c_label : string;  (** family tag, e.g. ["row:i"], ["nnz:B/2"] *)
  c_schedule : Schedule.t;
  c_tdns : (string * Tdn.t) list;
}

(** All candidates for the problem on its machine (1-D grids: universe +
    nnz + workspace families; multi-dim grids: the batched family). *)
val candidates : Core.Spdistal.problem -> candidate list

(** The strawman default every auto choice must beat: first output variable
    distributed, no leaf parallelism, every operand blocked on its {e last}
    dimension. *)
val naive : Core.Spdistal.problem -> candidate

(** The problem re-planned with the candidate's schedule and TDNs (operand
    slots shared — see {!Core.Spdistal.with_schedule}). *)
val apply : Core.Spdistal.problem -> candidate -> Core.Spdistal.problem
