open Loop_ir
module Level = Spdistal_formats.Level
module Partition = Spdistal_runtime.Partition
module Error = Spdistal_runtime.Error

type operand =
  | Sparse_op of { formats : Level.kind array; mode_order : int array }
  | Vec_op
  | Mat_op

type env = (string * operand) list

let find_operand env name =
  match List.assoc_opt name env with
  | Some op -> op
  | None -> invalid_arg (Printf.sprintf "Lower: unbound tensor %s" name)

let is_sparse env name =
  match find_operand env name with Sparse_op _ -> true | Vec_op | Mat_op -> false

(* Position of variable [v] in an access's index list. *)
let var_pos acc v =
  let rec go i = function
    | [] -> None
    | x :: _ when x = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 acc.Tin.indices

(* Storage level of the logical dimension [lpos] of a sparse operand. *)
let storage_level op lpos =
  match op with
  | Sparse_op { mode_order; _ } ->
      let rec go k =
        if k = Array.length mode_order then
          invalid_arg "Lower: logical dimension has no storage level"
        else if mode_order.(k) = lpos then k
        else go (k + 1)
      in
      go 0
  | Vec_op | Mat_op -> invalid_arg "Lower: storage_level of dense operand"

let level_kind op k =
  match op with
  | Sparse_op { formats; _ } -> formats.(k)
  | Vec_op | Mat_op -> invalid_arg "Lower: level_kind of dense operand"

let order_of op =
  match op with
  | Sparse_op { formats; _ } -> Array.length formats
  | Vec_op -> 1
  | Mat_op -> 2

let ctx_of env tname k =
  { Level_funcs.tensor = tname; level = k; kind = level_kind (find_operand env tname) k }

(* Debug-only fault injection for the fuzzer's acceptance test: when set,
   every block loses its last element, silently corrupting any distributed
   computation.  `spdistal fuzz --inject-bug` must catch and shrink this. *)
let flip_block_bound = ref false
let set_debug_flip_block_bound b = flip_block_bound := b
let debug_flip_block_bound () = !flip_block_bound

(* Block bounds for color [cvar] of [count] pieces over extent [d]:
   lo = cvar*d/count, hi = (cvar+1)*d/count - 1 (exact cover, remainder
   spread). *)
let block_bounds ~cvar ~count d =
  let c = Color_var cvar in
  let slack = if !flip_block_bound then 2 else 1 in
  let lo = Div (Mul (c, Dim d), Int count) in
  let hi = Sub (Div (Mul (Add (c, Int 1), Dim d), Int count), Int slack) in
  (lo, hi)

(* Result of partitioning one tensor's full coordinate tree. *)
type tree_parts = {
  level_parts : (int * string) list;  (** level -> partition of its positions *)
  vals_part : string;
  rows_part : string;  (** partition of level-0 positions *)
  tstmts : stmt list;
}

let level_part tp lvl =
  match List.assoc_opt lvl tp.level_parts with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Lower: no partition at level %d" lvl)

(* createInitialUniversePartitions + partitionCoordinateTrees for one tensor,
   with the initial universe partition at storage level [k]. *)
let partition_tree_universe env ~tname ~k ~cvar ~count ~axis =
  let op = find_operand env tname in
  let last = order_of op - 1 in
  let ctx = ctx_of env tname k in
  let init_stmt, coloring = Level_funcs.init_universe_partition ctx ~axis in
  let lo, hi = block_bounds ~cvar ~count (Dim_of_level (tname, k)) in
  let entry = Level_funcs.create_universe_partition_entry ctx ~coloring ~lo ~hi in
  let fin = Level_funcs.finalize_universe_partition ctx ~coloring in
  let stmts =
    ref
      ((Comment
          (Printf.sprintf "%s level %d: initial universe partition" tname (k + 1))
       :: init_stmt
       :: [ For_colors { cvar; count; body = [ entry ] } ])
      @ fin.Level_funcs.stmts)
  in
  let level_parts = ref [ (k, fin.Level_funcs.down) ] in
  (* Downward: partitionFromParent for every level below k. *)
  let cur = ref fin.Level_funcs.down in
  for lvl = k + 1 to last do
    let st, p = Level_funcs.partition_from_parent (ctx_of env tname lvl) ~parent:!cur in
    stmts := !stmts @ st;
    cur := p;
    level_parts := (lvl, p) :: !level_parts
  done;
  (* Upward: partitionFromChild for every level above k. *)
  let up = ref fin.Level_funcs.up in
  for lvl = k - 1 downto 0 do
    (* [up] currently partitions level [lvl]'s positions. *)
    level_parts := (lvl, !up) :: !level_parts;
    if lvl > 0 then begin
      let st, p = Level_funcs.partition_from_child (ctx_of env tname lvl) ~child:!up in
      stmts := !stmts @ st;
      up := p
    end
  done;
  let vst, vals_part = Level_funcs.vals_partition ~tensor:tname ~leaf_down:!cur in
  stmts := !stmts @ vst;
  let rows_part =
    match List.assoc_opt 0 !level_parts with Some p -> p | None -> fin.Level_funcs.down
  in
  { level_parts = !level_parts; vals_part; rows_part; tstmts = !stmts }

(* createInitialNonZeroPartition + partitionNonZeroCoordinateTree: initial
   equal-cardinality partition of level [k_f]'s positions. *)
let partition_tree_nonzero env ~tname ~k_f ~cvar ~count ~axis =
  let op = find_operand env tname in
  let last = order_of op - 1 in
  let ctx = ctx_of env tname k_f in
  let init_stmt, coloring = Level_funcs.init_non_zero_partition ctx ~axis in
  let extent =
    if k_f = last then Nnz_of tname else Extent_of_level (tname, k_f)
  in
  let lo, hi = block_bounds ~cvar ~count extent in
  let entry = Level_funcs.create_non_zero_partition_entry ctx ~coloring ~lo ~hi in
  let fin = Level_funcs.finalize_non_zero_partition ctx ~coloring in
  let stmts =
    ref
      ((Comment
          (Printf.sprintf "%s level %d: initial non-zero partition" tname (k_f + 1))
       :: init_stmt
       :: [ For_colors { cvar; count; body = [ entry ] } ])
      @ fin.Level_funcs.stmts)
  in
  let level_parts = ref [ (k_f, fin.Level_funcs.down) ] in
  let cur = ref fin.Level_funcs.down in
  for lvl = k_f + 1 to last do
    let st, p = Level_funcs.partition_from_parent (ctx_of env tname lvl) ~parent:!cur in
    stmts := !stmts @ st;
    cur := p;
    level_parts := (lvl, p) :: !level_parts
  done;
  let up = ref fin.Level_funcs.up in
  for lvl = k_f - 1 downto 0 do
    level_parts := (lvl, !up) :: !level_parts;
    if lvl > 0 then begin
      let st, p = Level_funcs.partition_from_child (ctx_of env tname lvl) ~child:!up in
      stmts := !stmts @ st;
      up := p
    end
  done;
  let vst, vals_part = Level_funcs.vals_partition ~tensor:tname ~leaf_down:!cur in
  stmts := !stmts @ vst;
  let rows_part =
    match List.assoc_opt 0 !level_parts with Some p -> p | None -> fin.Level_funcs.down
  in
  { level_parts = !level_parts; vals_part; rows_part; tstmts = !stmts }

(* Communication entry for a dense operand: find the gather variable -- the
   first index of the operand that the driver also iterates -- and derive the
   needed subsets per piece (paper §II-C: communicate granularity is
   user-chosen, contents are inferred). *)
let comm_for_dense_operand env ~driver ~driver_acc ~driver_tp ~strategy ~coloring_cvar:_
    ~count ~cvar ~axis ~divide_by (x_acc : Tin.access) =
  let xname = x_acc.Tin.tensor in
  let driver_op = find_operand env driver in
  let gather =
    List.find_map
      (fun v ->
        match var_pos driver_acc v with
        | Some lpos -> Some (v, lpos)
        | None -> None)
      x_acc.Tin.indices
  in
  match gather with
  | None ->
      (* No shared variable: the whole operand is needed everywhere. *)
      ([], { comm_tensor = xname; comm_dim = 0; comm_part = None; divide_by })
  | Some (g, lpos) -> (
      let gpos_in_x =
        match var_pos x_acc g with
        | Some p -> p
        | None ->
            Error.fail ~kernel:xname Error.Compile
              "comm_for_dense_operand: shared variable %s (position %d of \
               driver %s's access) is missing from %s's access"
              g lpos driver xname
      in
      let kg = storage_level driver_op lpos in
      match (level_kind driver_op kg, strategy) with
      | (Level.Compressed_k | Level.Compressed_nonunique_k | Level.Singleton_k), _
        ->
          (* Needed coordinates = image of the driver's crd values at that
             level under the driver's position partition. *)
          let pname = Printf.sprintf "%sGatherPart_%s" xname g in
          let st =
            Def_partition
              {
                pname;
                expr =
                  Image_values
                    {
                      crd = Crd_r (driver, kg);
                      part = level_part driver_tp kg;
                      target = Dom_r (xname, gpos_in_x);
                    };
              }
          in
          ([ st ], { comm_tensor = xname; comm_dim = gpos_in_x; comm_part = Some pname; divide_by })
      | Level.Dense_k, `Universe when kg = 0 ->
          (* The operand's dimension is co-partitioned with the distributed
             coordinate blocks. *)
          let pname = Printf.sprintf "%sBlockPart_%s" xname g in
          let cname = pname ^ "Coloring" in
          let lo, hi = block_bounds ~cvar ~count (Dim_of_level (driver, kg)) in
          let sts =
            [
              Init_coloring { coloring = cname; axis };
              For_colors
                { cvar; count; body = [ Coloring_entry { coloring = cname; lo; hi } ] };
              Def_partition
                { pname; expr = By_bounds { target = Dom_r (xname, gpos_in_x); coloring = cname } };
            ]
          in
          (sts, { comm_tensor = xname; comm_dim = gpos_in_x; comm_part = Some pname; divide_by })
      | Level.Dense_k, `Nonzero when kg = 0 ->
          (* Needed rows = the (aliased) span of each piece's positions. *)
          ( [],
            {
              comm_tensor = xname;
              comm_dim = gpos_in_x;
              comm_part = Some driver_tp.rows_part;
              divide_by;
            } )
      | Level.Dense_k, _ ->
          (* Inner dense driver level: not partitioned, whole dim needed. *)
          ([], { comm_tensor = xname; comm_dim = 0; comm_part = None; divide_by }))

(* Does an access mention any of the given variables? *)
let mentions acc vars = List.exists (fun v -> var_pos acc v <> None) vars

(* The leaf kernels execute exactly two statement shapes: a single product
   with one sparse operand (dense factors and literal coefficients allowed),
   or a pure sum of sparse accesses (the merge kernel).  Anything else used
   to fall through to the product path and run silently wrong — surfaced by
   the fuzzer; reject it here. *)
let check_fragment env stmt =
  let rec terms = function Tin.Add (a, b) -> terms a @ terms b | e -> [ e ] in
  let rec atoms = function Tin.Mul (a, b) -> atoms a @ atoms b | e -> [ e ] in
  match terms stmt.Tin.rhs with
  | [ t ] ->
      let sparse =
        List.filter
          (function
            | Tin.Access a -> is_sparse env a.Tin.tensor
            | Tin.Add _ ->
                invalid_arg "Lower: sums nested inside a product are unsupported"
            | Tin.Mul _ | Tin.Lit _ -> false)
          (atoms t)
      in
      if List.length sparse <> 1 then
        invalid_arg "Lower: products need exactly one sparse operand"
  | ts ->
      List.iter
        (function
          | Tin.Access a when is_sparse env a.Tin.tensor -> ()
          | _ ->
              invalid_arg
                "Lower: additive statements must be pure sums of sparse \
                 accesses")
        ts

let lower ~env ~grid stmt sched =
  Tin.validate ~order_of:(fun n -> order_of (find_operand env n)) stmt;
  check_fragment env stmt;
  let plan = Schedule.analyze stmt sched in
  let pieces = Array.fold_left ( * ) 1 grid in
  let primary_count = if Array.length grid >= 2 then grid.(0) else pieces in
  (* Everything this lowering distributes is chunked by the grid's first
     dimension; the second dimension only chunks dense columns (col_split). *)
  let primary_axis =
    if Array.length grid >= 2 then Partition.Grid_dim 0 else Partition.Flat
  in
  let col_split = if Array.length grid >= 2 then grid.(1) else 1 in
  ignore pieces;
  let out = stmt.Tin.lhs in
  let out_sparse = is_sparse env out.Tin.tensor in
  let rhs = Tin.rhs_accesses stmt in
  let rhs_sparse = List.filter (fun a -> is_sparse env a.Tin.tensor) rhs in
  let cvar = List.hd plan.Schedule.dist_vars in
  (* A merge kernel is a pure addition of several sparse operands; a single
     access (e.g. a TDN identity statement) is just a copy driven by that
     operand. *)
  let merge = Tin.is_pure_addition stmt && List.length rhs_sparse > 1 in
  (* A pattern-preserving sparse output shares the driver's metadata: pieces
     of a universe distribution over a variable outside the lhs prefix would
     alias the same output positions (an un-marked reduction).  Reject rather
     than run wrong. *)
  (match plan.Schedule.strategy with
  | Schedule.Universe_dist { var = v }
    when out_sparse && (not merge) && not (List.mem v out.Tin.indices) ->
      invalid_arg
        "Lower: universe distribution over a reduction variable is \
         unsupported with a sparse output"
  | _ -> ());
  let stmts = ref [] and comms = ref [] in
  let emit sts = stmts := !stmts @ sts in
  let add_comm c = comms := !comms @ [ c ] in
  (* Sparse inputs move as the sub-tensors named by their vals partitions
     (zero-cost when the data distribution already matches, paper §II-D). *)
  let add_sparse_comm tname vals_part =
    add_comm { comm_tensor = tname; comm_dim = -1; comm_part = Some vals_part; divide_by = 1 }
  in
  (* Variables whose presence in an operand means its dense columns are
     chunked by the machine grid's second dimension. *)
  let secondary_roots =
    match plan.Schedule.secondary_var with
    | None -> []
    | Some _ ->
        (* The second distributed variable must be a dense-only output
           variable; its root is the last lhs variable. *)
        [ List.nth out.Tin.indices (List.length out.Tin.indices - 1) ]
  in
  let divide_for acc = if mentions acc secondary_roots then col_split else 1 in
  let driver_accs =
    if merge then rhs_sparse
    else
      match rhs_sparse with
      | [ a ] -> [ a ]
      | _ -> invalid_arg "Lower: products need exactly one sparse operand"
  in
  let dense_accs = List.filter (fun a -> not (is_sparse env a.Tin.tensor)) rhs in
  let finish ~strategy ~(driver_acc : Tin.access) ~driver_tp ~tps ~nnz_split =
    let driver = driver_acc.Tin.tensor in
    (* Communication for dense operands. *)
    List.iter
      (fun a ->
        let sts, c =
          comm_for_dense_operand env ~driver ~driver_acc ~driver_tp ~strategy
            ~coloring_cvar:cvar ~count:primary_count ~cvar ~axis:primary_axis
            ~divide_by:(divide_for a) a
        in
        emit sts;
        add_comm c)
      dense_accs;
    (* Output handling. *)
    let out_comm, out_reduce =
      if out_sparse then
        if merge then begin
          emit
            [
              Comment
                (Printf.sprintf
                   "%s: unknown output pattern; two-phase local assembly"
                   out.Tin.tensor);
            ];
          (None, false)
        end
        else begin
          (* Pattern-preserving sparse output (§V-B): shares the driver's
             metadata down to the lhs depth. *)
          let depth = List.length out.Tin.indices in
          emit
            [
              Comment
                (Printf.sprintf "%s: shares %s's coordinate metadata (levels 1..%d)"
                   out.Tin.tensor driver depth);
            ];
          let driver_op = find_operand env driver in
          let out_level = depth - 1 in
          let leaf_level = order_of driver_op - 1 in
          if nnz_split && out_level < leaf_level then
            (* The piece boundary cuts output positions: reduce overlaps. *)
            ( Some
                {
                  comm_tensor = out.Tin.tensor;
                  comm_dim = -1;
                  comm_part = Some (level_part driver_tp out_level);
                  divide_by = 1;
                },
              true )
          else (None, false)
        end
      else if nnz_split then
        (* Dense output owned per-row by an aliased partition: reduction. *)
        ( Some
            {
              comm_tensor = out.Tin.tensor;
              comm_dim = 0;
              comm_part = Some driver_tp.rows_part;
              divide_by = divide_for out;
            },
          true )
      else if
        (* Universe distribution over a variable absent from the output
           (a distributed reduction loop): every piece holds a full
           partial output that must be summed. *)
        match plan.Schedule.strategy with
        | Schedule.Universe_dist { var = v } -> not (List.mem v out.Tin.indices)
        | Schedule.Non_zero_dist _ -> false
      then
        ( Some
            {
              comm_tensor = out.Tin.tensor;
              comm_dim = 0;
              comm_part = None;
              divide_by = divide_for out;
            },
          true )
      else (None, false)
    in
    let shard_parts = List.map (fun (a, tp) -> (a.Tin.tensor, tp.vals_part)) tps in
    let leaf_row_part =
      if merge then Some driver_tp.rows_part
      else Option.map (fun _ -> driver_tp.rows_part) (List.assoc_opt 0 driver_tp.level_parts)
    in
    let leaf =
      {
        leaf_stmt = stmt;
        driver =
          (if merge then Merge_driver (List.map (fun a -> a.Tin.tensor) driver_accs)
           else Sparse_driver driver);
        nnz_split;
        parallel = plan.Schedule.parallel_leaf <> None;
        out_reduce;
        leaf_row_part;
        use_workspace = plan.Schedule.workspace;
        col_split;
      }
    in
    emit
      [
        Distributed_for
          { var = cvar; shard_parts; comms = !comms; out_comm; leaf };
      ];
    { grid; stmts = !stmts }
  in
  match plan.Schedule.strategy with
  | Schedule.Universe_dist { var = v } ->
      (* createInitialUniversePartitions + partitionCoordinateTrees for every
         sparse operand indexed by the distributed variable (Fig. 9a). *)
      let tps =
        List.map
          (fun acc ->
            let tname = acc.Tin.tensor in
            let lpos =
              match var_pos acc v with
              | Some p -> p
              | None ->
                  invalid_arg
                    (Printf.sprintf "Lower: %s not indexed by distributed var %s"
                       tname v)
            in
            let k = storage_level (find_operand env tname) lpos in
            let tp =
              partition_tree_universe env ~tname ~k ~cvar ~count:primary_count
                ~axis:primary_axis
            in
            emit tp.tstmts;
            add_sparse_comm tname tp.vals_part;
            (acc, tp))
          driver_accs
      in
      (* A sparse pattern-preserving output indexed by [v] also gets its
         row partition implicitly via the shared metadata; a sparse merge
         output is assembled locally. *)
      let driver_acc, driver_tp = List.hd tps in
      finish ~strategy:`Universe ~driver_acc ~driver_tp ~tps ~nnz_split:false
  | Schedule.Non_zero_dist { tensor; fused } ->
      let driver_acc =
        match List.find_opt (fun a -> a.Tin.tensor = tensor) driver_accs with
        | Some a -> a
        | None -> invalid_arg "Lower: pos tensor is not a sparse operand"
      in
      if merge then
        invalid_arg
          "Lower: non-zero distribution of additive merges is unsupported \
           (paper §VI-A: SpAdd3 on CSR is incompatible with non-zero \
           splitting)";
      let driver_op = find_operand env tensor in
      (* The initial level is the storage level of the deepest fused var. *)
      let k_f =
        List.fold_left
          (fun acc v ->
            match var_pos driver_acc v with
            | Some lpos -> max acc (storage_level driver_op lpos)
            | None -> invalid_arg "Lower: fused var not in pos tensor's access")
          0 fused
      in
      let tp =
        partition_tree_nonzero env ~tname:tensor ~k_f ~cvar
          ~count:primary_count ~axis:primary_axis
      in
      emit tp.tstmts;
      add_sparse_comm tensor tp.vals_part;
      finish ~strategy:`Nonzero ~driver_acc ~driver_tp:tp
        ~tps:[ (driver_acc, tp) ]
        ~nnz_split:true

let placement_of_tdn ~env ~grid ~tensor ~order tdn =
  let stmt, sched = Tdn.to_schedule ~tensor ~order tdn in
  lower ~env ~grid stmt sched
