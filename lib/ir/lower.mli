(** The distributed code generation algorithm (paper §IV-C, Fig. 9a).

    Lowering a scheduled TIN statement proceeds exactly as the paper's
    recursive algorithm: for the distributed index variable it either
    - creates initial {e universe} partitions of every tensor level indexed
      by the variable (coordinate-value iteration), or
    - creates an initial {e non-zero} partition of the position-split
      tensor (coordinate-position iteration),
    then derives partitions of the full coordinate trees through the Table I
    level functions ([partitionFromParent] downward, [partitionFromChild]
    upward), partitions the remaining tensors from the resulting top-level
    partition, and finally emits a distributed loop whose body is the leaf
    kernel.  Communication directives are inferred for every operand
    ([communicate] controls granularity; what to move is derived via
    image/preimage, §II-C). *)

type operand =
  | Sparse_op of {
      formats : Spdistal_formats.Level.kind array;
      mode_order : int array;
    }
  | Vec_op
  | Mat_op

(** Tensor name -> shape metadata for every operand of the statement. *)
type env = (string * operand) list

(** [lower ~env ~grid stmt schedule] produces the partitioning-and-compute
    program.  Raises [Invalid_argument] on statements/schedules outside the
    supported fragment: the rhs must be a single product with exactly one
    sparse operand (dense factors and literal coefficients allowed) or a pure
    sum of sparse accesses (merge); at most two distributed loops; no
    distributing a non-root dense variable; no universe distribution over a
    reduction variable when the output is sparse. *)
val lower : env:env -> grid:int array -> Tin.stmt -> Schedule.t -> Loop_ir.prog

(** {1 Debug fault injection}

    Test-only: when set, {!lower} emits block bounds that drop the last
    element of every block, silently corrupting any distributed run.  Used by
    [spdistal fuzz --inject-bug] to prove the differential harness catches
    and shrinks a planted compiler bug.  Never set outside tests. *)

val set_debug_flip_block_bound : bool -> unit
val debug_flip_block_bound : unit -> bool

(** [placement_of_tdn ~env ~grid ~tensor ~order tdn] lowers the §V-C
    identity statement of a TDN declaration, yielding the partitioning
    program that materializes the data distribution. *)
val placement_of_tdn :
  env:env -> grid:int array -> tensor:string -> order:int -> Tdn.t -> Loop_ir.prog
