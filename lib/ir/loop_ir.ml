type dim_expr =
  | Dim_of_level of string * int
  | Extent_of_level of string * int
  | Nnz_of of string
  | Int_dim of int

type aexpr =
  | Int of int
  | Color_var of string
  | Dim of dim_expr
  | Add of aexpr * aexpr
  | Sub of aexpr * aexpr
  | Mul of aexpr * aexpr
  | Div of aexpr * aexpr

type rref =
  | Pos_r of string * int
  | Crd_r of string * int
  | Vals_r of string
  | Dom_r of string * int

type pexpr =
  | By_bounds of { target : rref; coloring : string }
  | By_value_ranges of { target : rref; coloring : string }
  | By_bounds_strided of { target : rref; coloring : string; dim : dim_expr }
  | Image_range of { pos : rref; part : string; target : rref }
  | Preimage_range of { pos : rref; part : string }
  | Image_values of { crd : rref; part : string; target : rref }
  | Copy_part of string
  | Scale_dense of { part : string; dim : dim_expr }
  | Unscale_dense of { part : string; dim : dim_expr }

type comm = {
  comm_tensor : string;
  comm_dim : int;
  comm_part : string option;
  divide_by : int;
}

type driver = Sparse_driver of string | Merge_driver of string list

type leaf = {
  leaf_stmt : Tin.stmt;
  driver : driver;
  nnz_split : bool;
  parallel : bool;
  out_reduce : bool;
  leaf_row_part : string option;
  use_workspace : bool;
  col_split : int;
}

type stmt =
  | Comment of string
  | Init_coloring of { coloring : string; axis : Spdistal_runtime.Partition.axis }
  | For_colors of { cvar : string; count : int; body : stmt list }
  | Coloring_entry of { coloring : string; lo : aexpr; hi : aexpr }
  | Def_partition of { pname : string; expr : pexpr }
  | Distributed_for of {
      var : string;
      shard_parts : (string * string) list;
      comms : comm list;
      out_comm : comm option;
      leaf : leaf;
    }

type prog = { grid : int array; stmts : stmt list }

let pieces prog = Array.fold_left ( * ) 1 prog.grid

let defined_partitions prog =
  let rec go acc = function
    | [] -> acc
    | Def_partition { pname; _ } :: rest -> go (pname :: acc) rest
    | For_colors { body; _ } :: rest -> go (go acc body) rest
    | (Comment _ | Init_coloring _ | Coloring_entry _ | Distributed_for _) :: rest
      ->
        go acc rest
  in
  List.rev (go [] prog.stmts)
