(** The scheduling language (paper §II-C): transformations that map a TIN
    statement onto a distributed machine.

    SpDISTAL's contribution is the combination of TACO's sparse iteration
    space transformations (split/divide/fuse and their non-zero [pos]
    variants, Senanayake et al.) with DISTAL's distributed primitives
    ([distribute], [communicate]).  A schedule is an ordered command list;
    {!analyze} recovers the distribution strategy the lowering algorithm
    (Fig. 9a) dispatches on: distributed {e coordinate-value} loops become
    universe partitions, distributed {e coordinate-position} loops become
    non-zero partitions. *)

type proc = Cpu_thread | Gpu_thread

type cmd =
  | Divide of { v : string; outer : string; inner : string }
      (** strip-mine [v] into [pieces] equal coordinate blocks *)
  | Split of { v : string; outer : string; inner : string; factor : int }
  | Fuse of { f : string; a : string; b : string }
      (** collapse nested loops [a], [b] into [f] *)
  | Pos of { v : string; pv : string; tensor : string }
      (** move iteration over [v] into the position space of [tensor]
          (the non-zero strip-mining enabler) *)
  | Reorder of string list
  | Distribute of string list
  | Communicate of { tensors : string list; at : string }
  | Parallelize of { v : string; proc : proc }
  | Precompute of { v : string; tensors : string list }
      (** hoist a sub-expression out of loop [v] (modeled for completeness;
          carried through analysis but not exploited by lowering) *)

type t = cmd list

(** How the distributed loop iterates (paper §IV-C). *)
type strategy =
  | Universe_dist of { var : string }
      (** coordinate-value iteration over original variable [var] *)
  | Non_zero_dist of { tensor : string; fused : string list }
      (** coordinate-position iteration over [tensor]'s non-zeros; [fused]
          are the original variables collapsed into the position space *)

type plan = {
  strategy : strategy;
  dist_vars : string list;  (** the distributed derived variables, in order *)
  secondary_var : string option;
      (** second distributed variable for 2-D (grid) distributions — must be
          a dense-only variable (batched SpMM) *)
  communicated : (string list * string) list;
  parallel_leaf : proc option;
  workspace : bool;  (** a [Precompute] command requested a dense workspace *)
}

(** Derive the distribution plan. Raises [Invalid_argument] on schedules the
    lowering does not support (no [Distribute], distributing an unknown
    variable, more than two distributed variables). [stmt] supplies variable
    provenance roots. *)
val analyze : Tin.stmt -> t -> plan

val pp_cmd : Format.formatter -> cmd -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Parsing}

    Inverse of {!to_string} (command chains render one [.cmd(...)] per line);
    [divide]'s machine-size placeholder ["M"] is accepted and discarded.
    Fuzzer reproducers rely on the round-trip. *)

val of_string : string -> (t, string) result

(** Like {!of_string} but raises [Invalid_argument]. *)
val of_string_exn : string -> t
