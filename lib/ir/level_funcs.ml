open Loop_ir
module Level = Spdistal_formats.Level

type ctx = { tensor : string; level : int; kind : Level.kind }
type finalized = { stmts : stmt list; up : string; down : string }

let part_name ctx suffix = Printf.sprintf "%s%d%s" ctx.tensor (ctx.level + 1) suffix
let coloring_name ctx = part_name ctx "Coloring"

let init_universe_partition ctx ~axis =
  let c = coloring_name ctx in
  (Init_coloring { coloring = c; axis }, c)

let create_universe_partition_entry _ctx ~coloring ~lo ~hi =
  Coloring_entry { coloring; lo; hi }

let finalize_universe_partition ctx ~coloring =
  match ctx.kind with
  | Level.Singleton_k ->
      (* crd parallels the parent positions: one bucketing serves both. *)
      let p = part_name ctx "CrdPart" in
      {
        stmts =
          [
            Def_partition
              {
                pname = p;
                expr = By_value_ranges { target = Crd_r (ctx.tensor, ctx.level); coloring };
              };
          ];
        up = p;
        down = p;
      }
  | Level.Dense_k when ctx.level = 0 ->
      (* P = partitionByBounds(C, dom); same partition flows up and down. *)
      let p = part_name ctx "Part" in
      {
        stmts =
          [ Def_partition { pname = p; expr = By_bounds { target = Dom_r (ctx.tensor, ctx.level); coloring } } ];
        up = p;
        down = p;
      }
  | Level.Dense_k ->
      (* Below a parent level, the dense level's position space is
         [parent * dim + coordinate]: the coordinate bounds select a slice of
         every parent's block, not a prefix of the position space (the prefix
         version silently dropped all but the first parent's positions —
         found by the fuzzer).  Upward, every parent keeps some coordinate of
         each block, which is exactly the unscaled strided partition. *)
      let p = part_name ctx "Part" in
      let pup = part_name ctx "ParentPart" in
      let dim = Dim_of_level (ctx.tensor, ctx.level) in
      {
        stmts =
          [
            Def_partition
              {
                pname = p;
                expr =
                  By_bounds_strided
                    { target = Dom_r (ctx.tensor, ctx.level); coloring; dim };
              };
            Def_partition
              { pname = pup; expr = Unscale_dense { part = p; dim } };
          ];
        up = pup;
        down = p;
      }
  | Level.Compressed_k | Level.Compressed_nonunique_k ->
      (* P_crd = partitionByValueRanges(C_crd, crd);
         P_pos = preimage(pos, P_crd, crd). *)
      let pcrd = part_name ctx "CrdPart" and ppos = part_name ctx "PosPart" in
      {
        stmts =
          [
            Def_partition
              {
                pname = pcrd;
                expr = By_value_ranges { target = Crd_r (ctx.tensor, ctx.level); coloring };
              };
            Def_partition
              {
                pname = ppos;
                expr = Preimage_range { pos = Pos_r (ctx.tensor, ctx.level); part = pcrd };
              };
          ];
        up = ppos;
        down = pcrd;
      }

let init_non_zero_partition ctx ~axis =
  let c = coloring_name ctx in
  (Init_coloring { coloring = c; axis }, c)

let create_non_zero_partition_entry _ctx ~coloring ~lo ~hi =
  Coloring_entry { coloring; lo; hi }

let finalize_non_zero_partition ctx ~coloring =
  match ctx.kind with
  | Level.Singleton_k ->
      let p = part_name ctx "CrdPart" in
      {
        stmts =
          [
            Def_partition
              {
                pname = p;
                expr = By_bounds { target = Crd_r (ctx.tensor, ctx.level); coloring };
              };
          ];
        up = p;
        down = p;
      }
  | Level.Dense_k when ctx.level = 0 ->
      let p = part_name ctx "Part" in
      {
        stmts =
          [ Def_partition { pname = p; expr = By_bounds { target = Dom_r (ctx.tensor, ctx.level); coloring } } ];
        up = p;
        down = p;
      }
  | Level.Dense_k ->
      (* Non-zero bounds are position bounds, so the downward partition is a
         plain prefix split; the upward parent partition is its unscaling
         (the parent position of dense position [p] is [p / dim]). *)
      let p = part_name ctx "Part" in
      let pup = part_name ctx "ParentPart" in
      let dim = Dim_of_level (ctx.tensor, ctx.level) in
      {
        stmts =
          [
            Def_partition
              { pname = p; expr = By_bounds { target = Dom_r (ctx.tensor, ctx.level); coloring } };
            Def_partition
              { pname = pup; expr = Unscale_dense { part = p; dim } };
          ];
        up = pup;
        down = p;
      }
  | Level.Compressed_k | Level.Compressed_nonunique_k ->
      (* P_crd = partitionByBounds(C_crd, crd);
         P_pos = preimage(pos, P_crd, crd). *)
      let pcrd = part_name ctx "CrdPart" and ppos = part_name ctx "PosPart" in
      {
        stmts =
          [
            Def_partition
              {
                pname = pcrd;
                expr = By_bounds { target = Crd_r (ctx.tensor, ctx.level); coloring };
              };
            Def_partition
              {
                pname = ppos;
                expr = Preimage_range { pos = Pos_r (ctx.tensor, ctx.level); part = pcrd };
              };
          ];
        up = ppos;
        down = pcrd;
      }

let partition_from_parent ctx ~parent =
  match ctx.kind with
  | Level.Singleton_k ->
      (* Positions are shared with the parent. *)
      let p = part_name ctx "Part" in
      ([ Def_partition { pname = p; expr = Copy_part parent } ], p)
  | Level.Dense_k ->
      (* part = copy(parentPart), rescaled into this level's position space. *)
      let p = part_name ctx "Part" in
      ( [
          Def_partition
            {
              pname = p;
              expr = Scale_dense { part = parent; dim = Dim_of_level (ctx.tensor, ctx.level) };
            };
        ],
        p )
  | Level.Compressed_k | Level.Compressed_nonunique_k ->
      (* P_pos = copy(parentPart); P_crd = image(pos, P_pos, crd). *)
      let ppos = part_name ctx "PosPart" and pcrd = part_name ctx "CrdPart" in
      ( [
          Def_partition { pname = ppos; expr = Copy_part parent };
          Def_partition
            {
              pname = pcrd;
              expr =
                Image_range
                  {
                    pos = Pos_r (ctx.tensor, ctx.level);
                    part = ppos;
                    target = Crd_r (ctx.tensor, ctx.level);
                  };
            };
        ],
        pcrd )

let partition_from_child ctx ~child =
  match ctx.kind with
  | Level.Singleton_k ->
      let p = part_name ctx "ParentPart" in
      ([ Def_partition { pname = p; expr = Copy_part child } ], p)
  | Level.Dense_k ->
      let p = part_name ctx "ParentPart" in
      ( [
          Def_partition
            {
              pname = p;
              expr = Unscale_dense { part = child; dim = Dim_of_level (ctx.tensor, ctx.level) };
            };
        ],
        p )
  | Level.Compressed_k | Level.Compressed_nonunique_k ->
      (* P_crd = copy(childPart); P_pos = preimage(pos, P_crd, crd). *)
      let ppos = part_name ctx "PosPart" and pcrd = part_name ctx "CrdPart" in
      ( [
          Def_partition { pname = pcrd; expr = Copy_part child };
          Def_partition
            {
              pname = ppos;
              expr = Preimage_range { pos = Pos_r (ctx.tensor, ctx.level); part = pcrd };
            };
        ],
        ppos )

let vals_partition ~tensor ~leaf_down =
  let p = tensor ^ "ValsPart" in
  ([ Def_partition { pname = p; expr = Copy_part leaf_down } ], p)

(* ------------------------------------------------------------------ *)
(* Compiled level iterators (paper §III-B / Chou et al.'s level
   functions): the per-kind position walk and locate functions,
   pre-resolved to closed closures over the level's storage so a compiled
   leaf loop carries no per-element format dispatch.                     *)
(* ------------------------------------------------------------------ *)

module Region = Spdistal_runtime.Region
module Error = Spdistal_runtime.Error

type level_iter = {
  li_locate : int -> int;
      (* position at this level -> its parent-level position *)
  li_iter : parent:int -> from:int -> (int -> int -> unit) -> unit;
      (* iterate [(coordinate, position)] pairs under [parent] in storage
         order, starting at position [from] ([-1] = the parent's first) *)
}

let iter_of_level (l : Level.t) =
  match l with
  | Level.Dense { dim } ->
      {
        li_locate = (fun p -> p / dim);
        li_iter =
          (fun ~parent ~from emit ->
            let base = parent * dim in
            let start = if from < 0 then base else from in
            for p = start to base + dim - 1 do
              emit (p - base) p
            done);
      }
  | Level.Compressed { pos; crd } ->
      let posd = pos.Region.data and crdd = crd.Region.data in
      let n = Array.length posd in
      {
        li_locate =
          (fun p ->
            (* The ranges are monotone and non-overlapping (empty parents
               are normalized to [(c, c-1)]), so binary search finds the
               unique parent whose range holds [p]. *)
            let rec bs lo hi =
              if lo > hi then
                Error.fail Error.Leaf
                  "compiled level iterator: position %d outside the pos \
                   ranges of a compressed level (%d parents)"
                  p n
              else
                let mid = (lo + hi) / 2 in
                let l, h = posd.(mid) in
                if p < l then bs lo (mid - 1)
                else if p > h then bs (mid + 1) hi
                else mid
            in
            bs 0 (n - 1));
        li_iter =
          (fun ~parent ~from emit ->
            let lo, hi = posd.(parent) in
            let start = if from < 0 then lo else from in
            for p = start to hi do
              emit crdd.(p) p
            done);
      }
  | Level.Singleton { crd } ->
      let crdd = crd.Region.data in
      {
        li_locate = (fun p -> p);
        li_iter =
          (fun ~parent ~from emit ->
            ignore from;
            emit crdd.(parent) parent);
      }
