(** Tensor index notation (TIN), the computation language of SpDISTAL
    (paper §II-A).

    A statement assigns into a left-hand-side access from an expression of
    multiplications and additions of accesses; index variables appearing only
    on the right denote sum reductions.  The concrete kernels of the
    evaluation are provided as constructors. *)

type access = { tensor : string; indices : string list }

type expr =
  | Access of access
  | Add of expr * expr
  | Mul of expr * expr
  | Lit of float

type stmt = { lhs : access; rhs : expr }

(** {1 Builders} *)

val access : string -> string list -> expr
val ( + ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val assign : string -> string list -> expr -> stmt

(** {1 Analysis} *)

(** All accesses of the right-hand side, left to right. *)
val rhs_accesses : stmt -> access list

(** Distinct index variables in first-appearance order (lhs first). *)
val index_vars : stmt -> string list

(** Index variables that appear only on the rhs (reduction variables). *)
val reduction_vars : stmt -> string list

(** [true] when the rhs is a pure sum of accesses (no products), the shape
    of SpAdd3. *)
val is_pure_addition : stmt -> bool

(** Validates arities against a lookup of tensor orders, and that lhs vars
    appear on the rhs. Raises [Invalid_argument]. *)
val validate : order_of:(string -> int) -> stmt -> unit

val pp : Format.formatter -> stmt -> unit
val to_string : stmt -> string

(** {1 Parsing}

    Inverse of {!to_string}: [*] and [+] parse left-associative, matching the
    builders, so statements built with the operators round-trip exactly.
    Fuzzer reproducers rely on this. *)

val of_string : string -> (stmt, string) result

(** Like {!of_string} but raises [Invalid_argument]. *)
val of_string_exn : string -> stmt

(** {1 The paper's evaluation kernels (§VI-A)} *)

val spmv : stmt (* a(i) = B(i,j) * c(j) *)
val spmm : stmt (* A(i,j) = B(i,k) * C(k,j) *)
val spadd3 : stmt (* A(i,j) = B(i,j) + C(i,j) + D(i,j) *)
val sddmm : stmt (* A(i,j) = B(i,j) * C(i,k) * D(k,j) *)
val spttv : stmt (* A(i,j) = B(i,j,k) * c(k) *)
val spmttkrp : stmt (* A(i,l) = B(i,j,k) * C(j,l) * D(k,l) *)
