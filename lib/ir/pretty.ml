open Loop_ir

let pp_dim fmt = function
  | Dim_of_level (t, k) -> Format.fprintf fmt "%s[%d].dim" t k
  | Extent_of_level (t, k) -> Format.fprintf fmt "%s[%d].extent" t k
  | Nnz_of t -> Format.fprintf fmt "%s.nnz" t
  | Int_dim n -> Format.fprintf fmt "%d" n

let rec pp_aexpr fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Color_var v -> Format.fprintf fmt "%s" v
  | Dim d -> pp_dim fmt d
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_aexpr a pp_aexpr b
  | Sub (a, b) -> Format.fprintf fmt "%a - %a" pp_aexpr a pp_sub b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" pp_atom a pp_atom b
  | Div (a, b) -> Format.fprintf fmt "%a / %a" pp_atom a pp_atom b

and pp_atom fmt = function
  | (Add _ | Sub _) as e -> Format.fprintf fmt "(%a)" pp_aexpr e
  | e -> pp_aexpr fmt e

and pp_sub fmt = function
  | (Add _ | Sub _) as e -> Format.fprintf fmt "(%a)" pp_aexpr e
  | e -> pp_aexpr fmt e

let pp_rref fmt = function
  | Pos_r (t, k) -> Format.fprintf fmt "%s[%d].pos" t k
  | Crd_r (t, k) -> Format.fprintf fmt "%s[%d].crd" t k
  | Vals_r t -> Format.fprintf fmt "%s.vals" t
  | Dom_r (t, k) -> Format.fprintf fmt "%s[%d].dom" t k

let pp_pexpr fmt = function
  | By_bounds { target; coloring } ->
      Format.fprintf fmt "partitionByBounds(%s, %a)" coloring pp_rref target
  | By_value_ranges { target; coloring } ->
      Format.fprintf fmt "partitionByValueRanges(%s, %a)" coloring pp_rref target
  | By_bounds_strided { target; coloring; dim } ->
      Format.fprintf fmt "partitionByBounds(%s, %a) /* per %a block */" coloring
        pp_rref target pp_dim dim
  | Image_range { pos; part; target } ->
      Format.fprintf fmt "image(%a, %s, %a)" pp_rref pos part pp_rref target
  | Preimage_range { pos; part } ->
      Format.fprintf fmt "preimage(%a, %s)" pp_rref pos part
  | Image_values { crd; part; target } ->
      Format.fprintf fmt "imageValues(%a, %s, %a)" pp_rref crd part pp_rref target
  | Copy_part p -> Format.fprintf fmt "copy(%s)" p
  | Scale_dense { part; dim } ->
      Format.fprintf fmt "copy(%s) /* scaled by %a */" part pp_dim dim
  | Unscale_dense { part; dim } ->
      Format.fprintf fmt "copy(%s) /* unscaled by %a */" part pp_dim dim

let pp_comm fmt (c : comm) =
  let part = match c.comm_part with None -> "<all>" | Some p -> p in
  let dim =
    if c.comm_dim < 0 then "nnz" else Printf.sprintf "dim %d" c.comm_dim
  in
  if c.divide_by > 1 then
    Format.fprintf fmt "communicate %s by %s[%s] (cols/%d)" c.comm_tensor dim
      part c.divide_by
  else Format.fprintf fmt "communicate %s by %s[%s]" c.comm_tensor dim part

let pp_driver fmt = function
  | Sparse_driver t -> Format.fprintf fmt "%s" t
  | Merge_driver ts -> Format.fprintf fmt "merge(%s)" (String.concat ", " ts)

let rec pp_stmt fmt = function
  | Comment s -> Format.fprintf fmt "// %s" s
  | Init_coloring { coloring = c; axis } ->
      Format.fprintf fmt "Coloring %s = {};%s" c
        (match axis with
        | Spdistal_runtime.Partition.Flat -> ""
        | Spdistal_runtime.Partition.Grid_dim d ->
            Printf.sprintf " // colors = grid dim %d" d)
  | For_colors { cvar; count; body } ->
      Format.fprintf fmt "@[<v 2>for (int %s = 0; %s < %d; %s++) {@,%a@]@,}" cvar
        cvar count cvar pp_block body
  | Coloring_entry { coloring; lo; hi } ->
      Format.fprintf fmt "%s[color] = {%a, %a};" coloring pp_aexpr lo pp_aexpr hi
  | Def_partition { pname; expr } ->
      Format.fprintf fmt "auto %s = %a;" pname pp_pexpr expr
  | Distributed_for { var; shard_parts; comms; out_comm; leaf } ->
      Format.fprintf fmt "@[<v 2>distributed for %s in pieces {" var;
      List.iter
        (fun (t, p) -> Format.fprintf fmt "@,%s = subtensor(%s[%s]);" t p var)
        shard_parts;
      List.iter (fun c -> Format.fprintf fmt "@,%a;" pp_comm c) comms;
      (match out_comm with
      | Some c -> Format.fprintf fmt "@,// output: %a (reduction)" pp_comm c
      | None -> ());
      Format.fprintf fmt "@,leaf: %a over %a%s%s%s" Tin.pp leaf.leaf_stmt
        pp_driver leaf.driver
        (if leaf.nnz_split then " [nnz-split]" else "")
        (if leaf.parallel then " [parallel]" else "")
        (if leaf.col_split > 1 then
           Printf.sprintf " [cols/%d]" leaf.col_split
         else "");
      Format.fprintf fmt "@]@,}"

and pp_block fmt body =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f "@,")
    pp_stmt fmt body

let pp_prog fmt prog =
  Format.fprintf fmt "@[<v>// lowered for %d piece(s)@,%a@]"
    (pieces prog) pp_block prog.stmts

let prog_to_string prog = Format.asprintf "%a" pp_prog prog
