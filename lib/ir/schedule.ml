type proc = Cpu_thread | Gpu_thread

type cmd =
  | Divide of { v : string; outer : string; inner : string }
  | Split of { v : string; outer : string; inner : string; factor : int }
  | Fuse of { f : string; a : string; b : string }
  | Pos of { v : string; pv : string; tensor : string }
  | Reorder of string list
  | Distribute of string list
  | Communicate of { tensors : string list; at : string }
  | Parallelize of { v : string; proc : proc }
  | Precompute of { v : string; tensors : string list }

type t = cmd list

type strategy =
  | Universe_dist of { var : string }
  | Non_zero_dist of { tensor : string; fused : string list }

type plan = {
  strategy : strategy;
  dist_vars : string list;
  secondary_var : string option;
  communicated : (string list * string) list;
  parallel_leaf : proc option;
  workspace : bool;
}

(* Provenance of a derived variable back to the statement's original
   variables. *)
type root =
  | Orig of string
  | Fused_root of string list
  | Pos_root of { tensor : string; fused : string list }

let analyze stmt sched =
  let originals = Tin.index_vars stmt in
  let roots : (string, root) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace roots v (Orig v)) originals;
  let root_of v =
    match Hashtbl.find_opt roots v with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Schedule.analyze: unknown variable %s" v)
  in
  let vars_of_root = function
    | Orig v -> [ v ]
    | Fused_root vs -> vs
    | Pos_root { fused; _ } -> fused
  in
  let communicated = ref [] and parallel_leaf = ref None in
  let distributed = ref [] and workspace = ref false in
  List.iter
    (fun cmd ->
      match cmd with
      | Divide { v; outer; inner } | Split { v; outer; inner; _ } ->
          let r = root_of v in
          Hashtbl.replace roots outer r;
          Hashtbl.replace roots inner r
      | Fuse { f; a; b } ->
          let va = vars_of_root (root_of a) and vb = vars_of_root (root_of b) in
          Hashtbl.replace roots f (Fused_root (va @ vb))
      | Pos { v; pv; tensor } ->
          let fused = vars_of_root (root_of v) in
          Hashtbl.replace roots pv (Pos_root { tensor; fused })
      | Reorder _ -> ()
      | Distribute vs ->
          List.iter (fun v -> ignore (root_of v)) vs;
          distributed := !distributed @ vs
      | Communicate { tensors; at } ->
          ignore (root_of at);
          communicated := (tensors, at) :: !communicated
      | Parallelize { proc; _ } -> parallel_leaf := Some proc
      | Precompute _ -> workspace := true)
    sched;
  let dist_vars = !distributed in
  (match dist_vars with
  | [] -> invalid_arg "Schedule.analyze: no distribute command"
  | _ :: _ :: _ :: _ ->
      invalid_arg "Schedule.analyze: at most two distributed variables"
  | _ -> ());
  let primary = List.hd dist_vars in
  let secondary_var = match dist_vars with [ _; s ] -> Some s | _ -> None in
  let strategy =
    match root_of primary with
    | Orig v -> Universe_dist { var = v }
    | Fused_root _ ->
        invalid_arg
          "Schedule.analyze: distributing a fused coordinate loop requires a \
           pos transformation first"
    | Pos_root { tensor; fused } -> Non_zero_dist { tensor; fused }
  in
  (match (strategy, secondary_var) with
  | Non_zero_dist _, Some _ ->
      invalid_arg
        "Schedule.analyze: 2-D distribution is only supported for \
         coordinate-value loops"
  | _ -> ());
  {
    strategy;
    dist_vars;
    secondary_var;
    communicated = List.rev !communicated;
    parallel_leaf = !parallel_leaf;
    workspace = !workspace;
  }

let pp_proc fmt = function
  | Cpu_thread -> Format.fprintf fmt "CPUThread"
  | Gpu_thread -> Format.fprintf fmt "GPUThread"

let pp_cmd fmt = function
  | Divide { v; outer; inner } ->
      Format.fprintf fmt "divide(%s, %s, %s, M)" v outer inner
  | Split { v; outer; inner; factor } ->
      Format.fprintf fmt "split(%s, %s, %s, %d)" v outer inner factor
  | Fuse { f; a; b } -> Format.fprintf fmt "fuse(%s, %s, %s)" f a b
  | Pos { v; pv; tensor } -> Format.fprintf fmt "pos(%s, %s, %s)" v pv tensor
  | Reorder vs -> Format.fprintf fmt "reorder(%s)" (String.concat ", " vs)
  | Distribute vs -> Format.fprintf fmt "distribute(%s)" (String.concat ", " vs)
  | Communicate { tensors; at } ->
      Format.fprintf fmt "communicate({%s}, %s)" (String.concat ", " tensors) at
  | Parallelize { v; proc } ->
      Format.fprintf fmt "parallelize(%s, %a)" v pp_proc proc
  | Precompute { v; tensors } ->
      Format.fprintf fmt "precompute(%s, {%s})" v (String.concat ", " tensors)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt ".%a" pp_cmd c)
    t;
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t

(* Parser for the rendered command chain (the inverse of [pp]); [divide]'s
   trailing machine-size placeholder "M" is accepted and discarded. *)
let of_string str =
  let n = String.length str in
  let pos = ref 0 in
  let exception Fail of string in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip () =
    while
      !pos < n
      &&
      let c = str.[!pos] in
      c = ' ' || c = '\t' || c = '\n' || c = '\r'
    do
      incr pos
    done
  in
  let peek () =
    skip ();
    if !pos < n then Some str.[!pos] else None
  in
  let eat c =
    match peek () with
    | Some d when d = c -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let ident () =
    skip ();
    let start = !pos in
    while !pos < n && is_ident str.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected identifier";
    String.sub str start (!pos - start)
  in
  (* Comma-separated identifiers terminated by [close]. *)
  let idents close =
    let rec go acc =
      let v = ident () in
      match peek () with
      | Some ',' ->
          eat ',';
          go (v :: acc)
      | _ ->
          eat close;
          List.rev (v :: acc)
    in
    go []
  in
  let braced () =
    eat '{';
    idents '}'
  in
  let cmd () =
    (match peek () with Some '.' -> eat '.' | _ -> ());
    let name = ident () in
    eat '(';
    match name with
    | "divide" -> (
        match idents ')' with
        | [ v; outer; inner; _machine ] -> Divide { v; outer; inner }
        | _ -> fail "divide expects (v, outer, inner, M)")
    | "split" -> (
        match idents ')' with
        | [ v; outer; inner; f ] -> (
            match int_of_string_opt f with
            | Some factor -> Split { v; outer; inner; factor }
            | None -> fail "split factor must be an integer")
        | _ -> fail "split expects (v, outer, inner, factor)")
    | "fuse" -> (
        match idents ')' with
        | [ f; a; b ] -> Fuse { f; a; b }
        | _ -> fail "fuse expects (f, a, b)")
    | "pos" -> (
        match idents ')' with
        | [ v; pv; tensor ] -> Pos { v; pv; tensor }
        | _ -> fail "pos expects (v, pv, tensor)")
    | "reorder" -> Reorder (idents ')')
    | "distribute" -> Distribute (idents ')')
    | "communicate" ->
        let tensors = braced () in
        eat ',';
        let at = ident () in
        eat ')';
        Communicate { tensors; at }
    | "parallelize" -> (
        match idents ')' with
        | [ v; "CPUThread" ] -> Parallelize { v; proc = Cpu_thread }
        | [ v; "GPUThread" ] -> Parallelize { v; proc = Gpu_thread }
        | _ -> fail "parallelize expects (v, CPUThread|GPUThread)")
    | "precompute" ->
        let v = ident () in
        eat ',';
        let tensors = braced () in
        eat ')';
        Precompute { v; tensors }
    | other -> fail (Printf.sprintf "unknown command %s" other)
  in
  try
    let cmds = ref [] in
    while peek () <> None do
      cmds := cmd () :: !cmds
    done;
    Ok (List.rev !cmds)
  with Fail msg -> Error ("Schedule.of_string: " ^ msg)

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m
