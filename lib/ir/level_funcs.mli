(** The partitioning level functions of paper Table I.

    Chou et al.'s format abstraction lets the code generator reason per
    dimension: each level kind implements the same interface, returning IR
    fragments, and new formats slot in without changing the lowering
    algorithm.  Two groups create {e initial} level partitions (universe and
    non-zero); two derived functions propagate a level partition through the
    rest of the coordinate tree ({!partition_from_parent},
    {!partition_from_child}).

    Partition names follow the paper's generated code (Fig. 9b):
    ["B1Part"], ["B2PosPart"], ["B2CrdPart"], ["BValsPart"], ... *)

open Loop_ir

type ctx = {
  tensor : string;
  level : int;  (** storage level index (0-based) *)
  kind : Spdistal_formats.Level.kind;
}

(** Result of finalizing an initial level partition: statements, the
    partition to use for partitioning {e parent} levels, and the partition to
    use for partitioning {e child} levels. *)
type finalized = { stmts : stmt list; up : string; down : string }

(** {1 Universe partitions} *)

(** Returns the init statement and the coloring name it defines. *)
val init_universe_partition :
  ctx -> axis:Spdistal_runtime.Partition.axis -> stmt * string

(** Entry mapping coordinate range [lo..hi] to the current color (emitted
    inside the [For_colors] loop). *)
val create_universe_partition_entry :
  ctx -> coloring:string -> lo:aexpr -> hi:aexpr -> stmt

val finalize_universe_partition : ctx -> coloring:string -> finalized

(** {1 Non-zero partitions} *)

val init_non_zero_partition :
  ctx -> axis:Spdistal_runtime.Partition.axis -> stmt * string

(** Entry mapping {e position} range [lo..hi] (within the level's stored
    coordinates) to the current color. *)
val create_non_zero_partition_entry :
  ctx -> coloring:string -> lo:aexpr -> hi:aexpr -> stmt

val finalize_non_zero_partition : ctx -> coloring:string -> finalized

(** {1 Derived partitions} *)

(** [partition_from_parent ctx ~parent] partitions level [ctx.level] from a
    partition of its parent's positions; returns the statements and the
    partition of this level's positions (to continue downward). *)
val partition_from_parent : ctx -> parent:string -> stmt list * string

(** [partition_from_child ctx ~child] partitions level [ctx.level] from a
    partition of its own positions; returns the statements and the partition
    of the {e parent}'s positions (to continue upward). *)
val partition_from_child : ctx -> child:string -> stmt list * string

(** Partition of the values region from the leaf level's position
    partition. *)
val vals_partition : tensor:string -> leaf_down:string -> stmt list * string

(** Canonical partition name, e.g. [part_name ctx "CrdPart"] =
    ["B2CrdPart"]. *)
val part_name : ctx -> string -> string

(** {1 Compiled level iterators}

    Per-kind position walks pre-resolved to closed closures over the level's
    storage (dense / compressed / compressed-nonunique / singleton — the
    non-unique variant shares the [Compressed] representation), so a
    compiled leaf loop carries no per-element format dispatch. *)

type level_iter = {
  li_locate : int -> int;
      (** position at this level -> its parent-level position (dense:
          [p / dim]; compressed: binary search of the monotone pos ranges;
          singleton: identity) *)
  li_iter : parent:int -> from:int -> (int -> int -> unit) -> unit;
      (** [li_iter ~parent ~from emit] calls [emit coordinate position] for
          this level's positions under [parent] in storage order, starting
          at position [from] ([-1] = the parent's first position) *)
}

val iter_of_level : Spdistal_formats.Level.t -> level_iter
