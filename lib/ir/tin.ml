type access = { tensor : string; indices : string list }

type expr =
  | Access of access
  | Add of expr * expr
  | Mul of expr * expr
  | Lit of float

type stmt = { lhs : access; rhs : expr }

let access tensor indices = Access { tensor; indices }
let ( + ) a b = Add (a, b)
let ( * ) a b = Mul (a, b)
let assign tensor indices rhs = { lhs = { tensor; indices }; rhs }

let rec expr_accesses = function
  | Access a -> [ a ]
  | Add (a, b) | Mul (a, b) -> expr_accesses a @ expr_accesses b
  | Lit _ -> []

let rhs_accesses s = expr_accesses s.rhs

let index_vars s =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  List.iter note s.lhs.indices;
  List.iter (fun a -> List.iter note a.indices) (rhs_accesses s);
  List.rev !out

let reduction_vars s =
  List.filter (fun v -> not (List.mem v s.lhs.indices)) (index_vars s)

let is_pure_addition s =
  let rec go = function
    | Access _ | Lit _ -> true
    | Add (a, b) -> go a && go b
    | Mul _ -> false
  in
  go s.rhs

let validate ~order_of s =
  let check a =
    let expected = order_of a.tensor in
    if List.length a.indices <> expected then
      invalid_arg
        (Printf.sprintf "Tin.validate: %s accessed with %d indices, order %d"
           a.tensor (List.length a.indices) expected)
  in
  check s.lhs;
  List.iter check (rhs_accesses s);
  let rhs_vars =
    List.concat_map (fun a -> a.indices) (rhs_accesses s)
  in
  List.iter
    (fun v ->
      if not (List.mem v rhs_vars) then
        invalid_arg
          (Printf.sprintf "Tin.validate: lhs var %s not bound on the rhs" v))
    s.lhs.indices

let pp_access fmt a =
  Format.fprintf fmt "%s(%s)" a.tensor (String.concat "," a.indices)

let rec pp_expr fmt = function
  | Access a -> pp_access fmt a
  | Add (a, b) -> Format.fprintf fmt "%a + %a" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf fmt "%a * %a" pp_mul a pp_mul b
  | Lit f -> Format.fprintf fmt "%g" f

and pp_mul fmt = function
  | Add _ as e -> Format.fprintf fmt "(%a)" pp_expr e
  | e -> pp_expr fmt e

let pp fmt s = Format.fprintf fmt "%a = %a" pp_access s.lhs pp_expr s.rhs
let to_string s = Format.asprintf "%a" pp s

(* Recursive-descent parser, the inverse of [pp] ([*] and [+] parse
   left-associative, matching the builders).  Fuzzer reproducers round-trip
   statements through this. *)
let of_string str =
  let ( + ) = Stdlib.( + ) in
  let n = String.length str in
  let pos = ref 0 in
  let exception Fail of string in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip () =
    while
      !pos < n
      &&
      let c = str.[!pos] in
      c = ' ' || c = '\t' || c = '\n' || c = '\r'
    do
      pos := !pos + 1
    done
  in
  let peek () =
    skip ();
    if !pos < n then Some str.[!pos] else None
  in
  let eat c =
    match peek () with
    | Some d when d = c -> pos := !pos + 1
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let ident () =
    skip ();
    let start = !pos in
    while !pos < n && is_ident str.[!pos] do
      pos := !pos + 1
    done;
    if !pos = start then fail "expected identifier";
    String.sub str start (!pos - start)
  in
  let number () =
    skip ();
    let start = !pos in
    if !pos < n && str.[!pos] = '-' then pos := !pos + 1;
    let digits () =
      while !pos < n && str.[!pos] >= '0' && str.[!pos] <= '9' do
        pos := !pos + 1
      done
    in
    digits ();
    if !pos < n && str.[!pos] = '.' then begin
      pos := !pos + 1;
      digits ()
    end;
    if !pos < n && (str.[!pos] = 'e' || str.[!pos] = 'E') then begin
      pos := !pos + 1;
      if !pos < n && (str.[!pos] = '+' || str.[!pos] = '-') then pos := !pos + 1;
      digits ()
    end;
    match float_of_string_opt (String.sub str start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let access_p () =
    let tensor = ident () in
    eat '(';
    let rec vars acc =
      let v = ident () in
      match peek () with
      | Some ',' ->
          eat ',';
          vars (v :: acc)
      | _ ->
          eat ')';
          List.rev (v :: acc)
    in
    { tensor; indices = vars [] }
  in
  let rec atom () =
    match peek () with
    | Some '(' ->
        eat '(';
        let e = expr_p () in
        eat ')';
        e
    | Some c when c = '-' || c = '.' || (c >= '0' && c <= '9') -> Lit (number ())
    | _ -> Access (access_p ())
  and term () =
    let rec go acc =
      match peek () with
      | Some '*' ->
          eat '*';
          go (Mul (acc, atom ()))
      | _ -> acc
    in
    go (atom ())
  and expr_p () =
    let rec go acc =
      match peek () with
      | Some '+' ->
          eat '+';
          go (Add (acc, term ()))
      | _ -> acc
    in
    go (term ())
  in
  try
    let lhs = access_p () in
    eat '=';
    let rhs = expr_p () in
    skip ();
    if !pos <> n then fail "trailing input";
    Ok { lhs; rhs }
  with Fail msg -> Error ("Tin.of_string: " ^ msg)

let of_string_exn s =
  match of_string s with Ok t -> t | Error m -> invalid_arg m

let spmv = assign "a" [ "i" ] (access "B" [ "i"; "j" ] * access "c" [ "j" ])

let spmm =
  assign "A" [ "i"; "j" ] (access "B" [ "i"; "k" ] * access "C" [ "k"; "j" ])

let spadd3 =
  assign "A" [ "i"; "j" ]
    (access "B" [ "i"; "j" ] + access "C" [ "i"; "j" ] + access "D" [ "i"; "j" ])

let sddmm =
  assign "A" [ "i"; "j" ]
    (access "B" [ "i"; "j" ] * access "C" [ "i"; "k" ] * access "D" [ "k"; "j" ])

let spttv =
  assign "A" [ "i"; "j" ] (access "B" [ "i"; "j"; "k" ] * access "c" [ "k" ])

let spmttkrp =
  assign "A" [ "i"; "l" ]
    (access "B" [ "i"; "j"; "k" ] * access "C" [ "j"; "l" ] * access "D" [ "k"; "l" ])
