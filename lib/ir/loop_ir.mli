(** The loop-level intermediate representation that lowering targets: the
    "generated code" of SpDISTAL (paper Fig. 9b), as a typed AST instead of
    C++ text.

    Programs consist of partitioning statements (colorings, [partitionBy*],
    [image]/[preimage] — the IR fragments returned by the Table I level
    functions), a distributed loop carrying communication directives, and a
    leaf kernel specification executed on every piece.  {!Pretty} renders
    programs in the paper's pseudo-code style; [Spdistal_exec.Interp]
    executes them against the runtime substrate. *)

(** Symbolic dimension quantities (resolved against bound tensors). *)
type dim_expr =
  | Dim_of_level of string * int  (** universe size of a storage level *)
  | Extent_of_level of string * int  (** position extent of a storage level *)
  | Nnz_of of string  (** stored leaf count *)
  | Int_dim of int

(** Arithmetic over colors and dimensions, for coloring-entry bounds. *)
type aexpr =
  | Int of int
  | Color_var of string
  | Dim of dim_expr
  | Add of aexpr * aexpr
  | Sub of aexpr * aexpr
  | Mul of aexpr * aexpr
  | Div of aexpr * aexpr  (** integer division *)

(** A region within a tensor's storage. *)
type rref =
  | Pos_r of string * int
  | Crd_r of string * int
  | Vals_r of string
  | Dom_r of string * int
      (** the implicit position/coordinate space of a dense level *)

(** Partition-producing operations (paper Table I / §III-A). *)
type pexpr =
  | By_bounds of { target : rref; coloring : string }
  | By_value_ranges of { target : rref; coloring : string }
  | By_bounds_strided of { target : rref; coloring : string; dim : dim_expr }
      (** per-color coordinate bounds applied within every [dim]-sized block
          of the target position space (a dense level below a sparse parent) *)
  | Image_range of { pos : rref; part : string; target : rref }
  | Preimage_range of { pos : rref; part : string }
  | Image_values of { crd : rref; part : string; target : rref }
  | Copy_part of string
  | Scale_dense of { part : string; dim : dim_expr }
      (** dense-level partitionFromParent: positions [p] -> [p*dim .. ] *)
  | Unscale_dense of { part : string; dim : dim_expr }
      (** dense-level partitionFromChild *)

(** Communication directive for one operand at the distributed loop: piece
    [c] needs subset [part(c)] of dimension [dim] of [tensor], each element
    carrying the bytes of the remaining dimensions.  [part = None] means the
    whole dimension (replication).  [divide_by] scales the per-element bytes
    down (2-D column chunking of dense operands). *)
type comm = {
  comm_tensor : string;
  comm_dim : int;
  comm_part : string option;
  divide_by : int;
}

(** How the leaf iterates (derived from the TIN statement and schedule). *)
type driver =
  | Sparse_driver of string  (** iterate stored values of one sparse operand *)
  | Merge_driver of string list  (** co-iterate rows of several operands *)

type leaf = {
  leaf_stmt : Tin.stmt;
  driver : driver;
  nnz_split : bool;  (** shard boundary cuts rows (position-space split) *)
  parallel : bool;  (** leaf parallelized over the piece's processors *)
  out_reduce : bool;  (** pieces reduce into overlapping output locations *)
  leaf_row_part : string option;
      (** partition giving each piece's row set (merge kernels iterate rows
          across several operands) *)
  use_workspace : bool;
      (** merge kernels accumulate each row in a dense workspace (the
          precompute transformation of Kjolstad et al. [22]) instead of a
          k-way coordinate merge *)
  col_split : int;
      (** >1 when a second machine dimension chunks the dense column
          dimension (batched SpMM): each piece computes cols/col_split *)
}

type stmt =
  | Comment of string
  | Init_coloring of { coloring : string; axis : Spdistal_runtime.Partition.axis }
      (** [axis] records which machine-grid dimension the coloring's colors
          enumerate; partitions built from the coloring inherit it, and the
          interpreter dispatches on it when mapping piece ids to colors
          (color counts alone are ambiguous on square grids) *)
  | For_colors of { cvar : string; count : int; body : stmt list }
      (** loop over colors 0..count-1 creating coloring entries *)
  | Coloring_entry of { coloring : string; lo : aexpr; hi : aexpr }
  | Def_partition of { pname : string; expr : pexpr }
  | Distributed_for of {
      var : string;
      shard_parts : (string * string) list;
          (** tensor -> vals/row partition defining its piece's work *)
      comms : comm list;
      out_comm : comm option;
      leaf : leaf;
    }

type prog = {
  grid : int array;  (** machine grid the program was lowered for *)
  stmts : stmt list;
}

val pieces : prog -> int

(** All partition names defined by a program, in definition order. *)
val defined_partitions : prog -> string list
